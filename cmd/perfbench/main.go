// Command perfbench runs the repository's continuous-benchmarking
// suite (internal/perfbench) and maintains the BENCH_*.json
// performance trajectory.
//
// Typical uses:
//
//	perfbench                          # run the quick suite, print the table
//	perfbench -full                    # include the macro benchmarks
//	perfbench -run 'bitset|layout'     # subset by name
//	perfbench -json out.json           # also write the report
//	perfbench -update                  # refresh the committed baseline
//	perfbench -check                   # compare a fresh run to the baseline;
//	                                   # exit 1 on a confirmed regression
//
// Exit codes: 0 clean, 1 confirmed regression (-check), 2 usage or
// runtime error.
package main

import (
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"runtime/pprof"
	"text/tabwriter"

	"ffsage/internal/perfbench"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		runPat    = flag.String("run", "", "only run benchmarks matching this regexp")
		reps      = flag.Int("reps", 7, "timed repetitions per benchmark")
		warmup    = flag.Int("warmup", 1, "unmeasured warmup runs per benchmark")
		seed      = flag.Int64("seed", 1996, "fixture and bootstrap seed")
		full      = flag.Bool("full", false, "run the full suite, not just the quick subset")
		conf      = flag.Float64("conf", 0.95, "bootstrap confidence level")
		resamples = flag.Int("resamples", 200, "bootstrap resample count")
		jsonOut   = flag.String("json", "", "write the JSON report to this path")
		memProf   = flag.String("memprofile", "", "write an allocation (pprof allocs) profile to this path after the run")
		baseline  = flag.String("baseline", "BENCH_6.json", "baseline report path for -check / -update")
		check     = flag.Bool("check", false, "compare against -baseline; exit 1 on confirmed regression or blown allocation budget")
		update    = flag.Bool("update", false, "write this run's report to -baseline")
		tol       = flag.Float64("tol", 25, "percent median movement tolerated before a difference counts")
		list      = flag.Bool("list", false, "list registered benchmarks and exit")
		quiet     = flag.Bool("q", false, "suppress progress lines")
	)
	flag.Parse()

	if *list {
		for _, bm := range perfbench.All() {
			suite := "full"
			if bm.Quick {
				suite = "quick"
			}
			fmt.Printf("%-24s %s\n", bm.Name, suite)
		}
		return 0
	}

	opts := perfbench.Options{
		Reps:       *reps,
		Warmup:     *warmup,
		Seed:       *seed,
		Confidence: *conf,
		Resamples:  *resamples,
		Full:       *full,
	}
	if *runPat != "" {
		re, err := regexp.Compile(*runPat)
		if err != nil {
			fmt.Fprintf(os.Stderr, "perfbench: bad -run pattern: %v\n", err)
			return 2
		}
		opts.Run = re
	}
	if !*quiet {
		opts.Progress = func(name string) { fmt.Fprintf(os.Stderr, "perfbench: running %s\n", name) }
	}

	if !*quiet {
		fmt.Fprintln(os.Stderr, "perfbench: building fixture (micro workload + two aged images)")
	}
	fx, err := perfbench.NewFixture(*seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "perfbench: %v\n", err)
		return 2
	}
	rep, err := perfbench.RunSuite(fx, opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "perfbench: %v\n", err)
		return 2
	}
	if err := printTable(rep); err != nil {
		fmt.Fprintf(os.Stderr, "perfbench: %v\n", err)
		return 2
	}

	if *jsonOut != "" {
		if err := perfbench.WriteReportFile(*jsonOut, rep); err != nil {
			fmt.Fprintf(os.Stderr, "perfbench: writing %s: %v\n", *jsonOut, err)
			return 2
		}
	}
	if *memProf != "" {
		if err := writeAllocProfile(*memProf); err != nil {
			fmt.Fprintf(os.Stderr, "perfbench: writing %s: %v\n", *memProf, err)
			return 2
		}
	}
	if *update {
		if err := perfbench.WriteReportFile(*baseline, rep); err != nil {
			fmt.Fprintf(os.Stderr, "perfbench: updating baseline %s: %v\n", *baseline, err)
			return 2
		}
		fmt.Printf("baseline %s updated (%d benchmarks)\n", *baseline, len(rep.Benchmarks))
	}
	if *check {
		base, err := perfbench.ReadReportFile(*baseline)
		if err != nil {
			fmt.Fprintf(os.Stderr, "perfbench: reading baseline: %v\n", err)
			return 2
		}
		deltas := perfbench.Compare(base, rep, *tol)
		fmt.Printf("\ncheck against %s (tolerance %.0f%%, CI overlap respected):\n", *baseline, *tol)
		if err := perfbench.WriteDeltaTable(os.Stdout, deltas); err != nil {
			fmt.Fprintf(os.Stderr, "perfbench: %v\n", err)
			return 2
		}
		bad := len(perfbench.Regressions(deltas))
		if bad > 0 {
			fmt.Printf("\nREGRESSION: %d benchmark(s) confirmed slower or missing\n", bad)
		}
		budget := perfbench.BudgetViolations(rep)
		for _, v := range budget {
			fmt.Printf("ALLOC BUDGET: %s\n", v)
		}
		if bad > 0 || len(budget) > 0 {
			return 1
		}
		fmt.Println("\nno confirmed regressions; allocation budgets hold")
	}
	return 0
}

// writeAllocProfile dumps the cumulative allocation profile (pprof
// "allocs": every allocation since process start, sampled), the CI
// artifact for diagnosing a blown budget.
func writeAllocProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	runtime.GC() // flush outstanding mem profile records
	if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// printTable renders the run's summary table.
func printTable(rep *perfbench.Report) error {
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "benchmark\tmedian\t±MAD\t95%% CI\tns/op\tallocs/op\tB/op\tmetrics\n")
	for _, r := range rep.Benchmarks {
		metrics := ""
		if v, ok := r.Metrics["ops_per_s"]; ok {
			metrics = fmt.Sprintf("%.3g ops/s", v)
		}
		if v, ok := r.Metrics["mb_per_s"]; ok {
			metrics += fmt.Sprintf("  %.1f MB/s", v)
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t[%s, %s]\t%.1f\t%.2f\t%.0f\t%s\n",
			r.Name, fmtNs(r.MedianNs), fmtNs(r.MADNs), fmtNs(r.CILoNs), fmtNs(r.CIHiNs),
			r.NsPerOp, r.AllocsPerOp, r.BytesPerOp, metrics)
	}
	return tw.Flush()
}

func fmtNs(ns float64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.2fs", ns/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.2fms", ns/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.2fµs", ns/1e3)
	default:
		return fmt.Sprintf("%.0fns", ns)
	}
}
