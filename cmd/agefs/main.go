// Command agefs ages a simulated FFS by replaying a workload produced
// by mkworkload (paper Section 3.2), reporting the aggregate layout
// score per simulated day and optionally saving the aged image for the
// benchmark tools.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"ffsage/internal/aging"
	"ffsage/internal/core"
	"ffsage/internal/ffs"
	"ffsage/internal/trace"
)

func main() {
	var (
		wlPath   = flag.String("workload", "workload.ffw", "workload file (binary or text)")
		policy   = flag.String("policy", "realloc", "allocation policy: ffs or realloc")
		imageOut = flag.String("image", "", "save the aged image here")
		csvOut   = flag.String("csv", "", "write day,layout,utilization CSV here")
		check    = flag.Int("check", 0, "run the consistency checker every N days (0 = off)")
		quiet    = flag.Bool("q", false, "suppress per-day progress")
	)
	flag.Parse()
	if err := run(*wlPath, *policy, *imageOut, *csvOut, *check, *quiet); err != nil {
		fmt.Fprintln(os.Stderr, "agefs:", err)
		os.Exit(1)
	}
}

func pickPolicy(name string) (ffs.Policy, error) {
	switch strings.ToLower(name) {
	case "ffs", "orig", "original":
		return core.Original{}, nil
	case "realloc", "ffs+realloc":
		return core.Realloc{}, nil
	default:
		return nil, fmt.Errorf("unknown policy %q (want ffs or realloc)", name)
	}
}

func run(wlPath, policyName, imageOut, csvOut string, check int, quiet bool) error {
	f, err := os.Open(wlPath)
	if err != nil {
		return err
	}
	wl, err := trace.ReadWorkload(f)
	if err != nil {
		// Retry as text.
		if _, serr := f.Seek(0, 0); serr != nil {
			f.Close()
			return err
		}
		wl, err = trace.ReadWorkloadText(f)
	}
	f.Close()
	if err != nil {
		return fmt.Errorf("reading workload: %w", err)
	}

	policy, err := pickPolicy(policyName)
	if err != nil {
		return err
	}
	opts := aging.Options{CheckEvery: check}
	if !quiet {
		opts.Progress = func(day int, score, util float64) {
			fmt.Printf("day %3d: layout %.3f  utilization %.2f\n", day+1, score, util)
		}
	}
	res, err := aging.Replay(ffs.PaperParams(), policy, wl, opts)
	if err != nil {
		return err
	}
	fmt.Printf("aged %d days under %s: final layout %.3f, utilization %.2f, %d files"+
		" (%d ops skipped, %d for space)\n",
		wl.Days, policy.Name(), res.LayoutByDay.Final(), res.UtilByDay.Final(),
		res.Fs.FileCount(), res.SkippedOps, res.NoSpaceOps)

	if csvOut != "" {
		out, err := os.Create(csvOut)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, "day,layout,utilization")
		for i := range res.LayoutByDay {
			fmt.Fprintf(out, "%d,%.4f,%.4f\n",
				res.LayoutByDay[i].Day+1, res.LayoutByDay[i].Value, res.UtilByDay[i].Value)
		}
		if err := out.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", csvOut)
	}
	if imageOut != "" {
		out, err := os.Create(imageOut)
		if err != nil {
			return err
		}
		if err := res.Fs.SaveImage(out); err != nil {
			out.Close()
			return err
		}
		if err := out.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", imageOut)
	}
	return nil
}
