// Command agefs ages a simulated FFS by replaying a workload produced
// by mkworkload (paper Section 3.2), reporting the aggregate layout
// score per simulated day and optionally saving the aged image for the
// benchmark tools.
package main

import (
	"errors"
	"flag"
	"fmt"
	"math"
	"os"

	"ffsage/internal/aging"
	"ffsage/internal/faults"
	"ffsage/internal/ffs"
	ffspolicy "ffsage/internal/policy"
	"ffsage/internal/trace"
)

func main() {
	var (
		wlPath   = flag.String("workload", "workload.ffw", "workload file (binary or text)")
		policy   = flag.String("policy", "realloc", "allocation policy (any registered name, e.g. ffs, realloc, ffs+bestfit, ssd)")
		imageOut = flag.String("image", "", "save the aged image here")
		csvOut   = flag.String("csv", "", "write day,layout,utilization CSV here")
		check    = flag.Int("check", 0, "run the consistency checker every N days (0 = off)")
		arena    = flag.String("arena", "on", "File-recycling arena: on or off (off is a cross-check; results are identical)")
		faultStr = flag.String("faults", "", "fault plan to inject, e.g. tear@op:5000 (see internal/faults)")
		quiet    = flag.Bool("q", false, "suppress per-day progress")
	)
	flag.Parse()
	err := run(*wlPath, *policy, *imageOut, *csvOut, *check, *arena, *faultStr, *quiet)
	var crash *faults.Crash
	if errors.As(err, &crash) {
		// The interrupted (possibly corrupt) image was still saved, for
		// fsck -repair; signal the crash distinctly.
		fmt.Fprintln(os.Stderr, "agefs:", err)
		os.Exit(3)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "agefs:", err)
		os.Exit(1)
	}
}

func pickPolicy(name string) (ffs.Policy, error) {
	return ffspolicy.Resolve(name)
}

func run(wlPath, policyName, imageOut, csvOut string, check int, arena, faultStr string, quiet bool) error {
	opts := aging.Options{CheckEvery: check}
	switch arena {
	case "", "on":
	case "off":
		opts.NoArena = true
	default:
		return fmt.Errorf("-arena=%s: want on or off", arena)
	}

	f, err := os.Open(wlPath)
	if err != nil {
		return err
	}
	wl, err := trace.ReadWorkload(f)
	if err != nil {
		// Retry as text.
		if _, serr := f.Seek(0, 0); serr != nil {
			f.Close()
			return err
		}
		wl, err = trace.ReadWorkloadText(f)
	}
	f.Close()
	if err != nil {
		return fmt.Errorf("reading workload: %w", err)
	}

	policy, err := pickPolicy(policyName)
	if err != nil {
		return err
	}
	if faultStr != "" {
		plan, perr := faults.Parse(faultStr)
		if perr != nil {
			return perr
		}
		opts.Faults = plan
	}
	if !quiet {
		opts.Progress = func(day int, score, util float64) {
			fmt.Printf("day %3d: layout %.3f  utilization %.2f\n", day+1, score, util)
		}
	}
	res, err := aging.Replay(ffs.PaperParams(), policy, wl, opts)
	if err != nil {
		var crash *faults.Crash
		if !errors.As(err, &crash) || res == nil {
			return err
		}
		// Planned crash: save the interrupted image as-is (fsck's job),
		// then report the crash through the exit status.
		if imageOut != "" {
			if serr := saveImage(res.Fs, imageOut); serr != nil {
				return serr
			}
		}
		return err
	}
	// FinalOr: a zero-day workload records no series points.
	fmt.Printf("aged %d days under %s: final layout %.3f, utilization %.2f, %d files"+
		" (%d ops skipped, %d for space)\n",
		wl.Days, policy.Name(),
		res.LayoutByDay.FinalOr(math.NaN()), res.UtilByDay.FinalOr(math.NaN()),
		res.Fs.FileCount(), res.SkippedOps, res.NoSpaceOps)

	if csvOut != "" {
		out, err := os.Create(csvOut)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, "day,layout,utilization")
		for i := range res.LayoutByDay {
			fmt.Fprintf(out, "%d,%.4f,%.4f\n",
				res.LayoutByDay[i].Day+1, res.LayoutByDay[i].Value, res.UtilByDay[i].Value)
		}
		if err := out.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", csvOut)
	}
	if imageOut != "" {
		if err := saveImage(res.Fs, imageOut); err != nil {
			return err
		}
	}
	return nil
}

func saveImage(fsys *ffs.FileSystem, path string) error {
	out, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fsys.SaveImage(out); err != nil {
		out.Close()
		return err
	}
	if err := out.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}
