// Command ffsvet checks the repository's determinism, durability, and
// error-discipline invariants (see internal/analysis): the per-package
// syntactic checkers (detrand, maporder, checkedcorruption, nopanic,
// dirmap) and the whole-program reachability checkers (fsyncack,
// atomicwrite, snapshotpure, ctxloop), which query a conservative
// call graph spanning every analyzed package.
//
// Standalone mode builds that graph over all matched packages at once
// and is the authoritative run; -json emits the findings as a JSON
// array on stdout:
//
//	go run ./cmd/ffsvet ./...
//	go run ./cmd/ffsvet -json ./...
//
// Vettool mode covers test files but sees one compilation unit at a
// time, so the whole-program checkers run partially (optimistically —
// they under-report rather than false-positive there):
//
//	go build -o bin/ffsvet ./cmd/ffsvet
//	go vet -vettool=bin/ffsvet ./...
package main

import (
	"os"

	"ffsage/internal/analysis"
)

func main() {
	os.Exit(analysis.Main(os.Args[1:]))
}
