// Command ffsvet checks the repository's determinism, error-discipline,
// and panic-freedom invariants (see internal/analysis). Run it
// standalone over package patterns, or hand it to cmd/go for full
// coverage including test files:
//
//	go build -o bin/ffsvet ./cmd/ffsvet
//	go vet -vettool=bin/ffsvet ./...
package main

import (
	"os"

	"ffsage/internal/analysis"
)

func main() {
	os.Exit(analysis.Main(os.Args[1:]))
}
