package main

import (
	"fmt"
	"os"
	"path/filepath"

	"ffsage/internal/bench"
	"ffsage/internal/experiments"
	"ffsage/internal/plot"
	"ffsage/internal/stats"
)

// writeSVGs renders the paper's six figures from suite data into dir.
func writeSVGs(s *experiments.Suite, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	seriesXY := func(label string, ser stats.Series) plot.Series {
		out := plot.Series{Label: label}
		for _, p := range ser {
			out.X = append(out.X, float64(p.Day+1))
			out.Y = append(out.Y, p.Value)
		}
		return out
	}
	bucketXY := func(label string, bs []stats.SizeBucket) plot.Series {
		out := plot.Series{Label: label}
		for _, b := range bs {
			if b.Files == 0 {
				continue
			}
			out.X = append(out.X, float64(b.Hi))
			out.Y = append(out.Y, b.Score)
		}
		return out
	}
	seqXY := func(label string, rs []bench.SeqResult, y func(bench.SeqResult) float64) plot.Series {
		out := plot.Series{Label: label}
		for _, r := range rs {
			out.X = append(out.X, float64(r.FileSize))
			out.Y = append(out.Y, y(r))
		}
		return plot.SortedByX(out)
	}
	write := func(name string, c *plot.Chart) error {
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		defer f.Close()
		if err := c.WriteSVG(f); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		return f.Close()
	}

	realS, sim := s.Fig1()
	if err := write("fig1.svg", &plot.Chart{
		Title:  "Figure 1: Aggregate Layout Score Over Time — Real vs Simulated",
		XLabel: "Time (Days)", YLabel: "Aggregate Layout Score", YMin: 0, YMax: 1,
		Series: []plot.Series{seriesXY("Real", realS), seriesXY("Simulated", sim)},
	}); err != nil {
		return err
	}

	o2, r2 := s.Fig2()
	if err := write("fig2.svg", &plot.Chart{
		Title:  "Figure 2: Aggregate Layout Score Over Time — FFS vs Realloc",
		XLabel: "Time (Days)", YLabel: "Aggregate Layout Score", YMin: 0, YMax: 1,
		Series: []plot.Series{seriesXY("FFS", o2), seriesXY("FFS + Realloc", r2)},
	}); err != nil {
		return err
	}

	o3, r3 := s.Fig3()
	if err := write("fig3.svg", &plot.Chart{
		Title:  "Figure 3: Layout Score as a Function of File Size",
		XLabel: "File Size", YLabel: "Layout Score", YMin: 0, YMax: 1, LogX: true,
		Series: []plot.Series{bucketXY("FFS", o3), bucketXY("FFS + Realloc", r3)},
	}); err != nil {
		return err
	}

	f4, err := s.Fig4()
	if err != nil {
		return err
	}
	mb := func(v float64) float64 { return v / 1e6 }
	rawLine := func(label string, v float64) plot.Series {
		return plot.Series{Label: label,
			X: []float64{float64(f4.Orig[0].FileSize), float64(f4.Orig[len(f4.Orig)-1].FileSize)},
			Y: []float64{mb(v), mb(v)}}
	}
	if err := write("fig4-read.svg", &plot.Chart{
		Title:  "Figure 4 (top): Read Performance",
		XLabel: "File Size", YLabel: "Throughput (MB/Sec)", LogX: true, YMin: 0, YMax: 6,
		Series: []plot.Series{
			rawLine("Raw Read", f4.RawRead),
			seqXY("FFS + Realloc", f4.Realloc, func(r bench.SeqResult) float64 { return mb(r.ReadBps) }),
			seqXY("FFS", f4.Orig, func(r bench.SeqResult) float64 { return mb(r.ReadBps) }),
		},
	}); err != nil {
		return err
	}
	if err := write("fig4-write.svg", &plot.Chart{
		Title:  "Figure 4 (bottom): Write Performance",
		XLabel: "File Size", YLabel: "Throughput (MB/Sec)", LogX: true, YMin: 0, YMax: 6,
		Series: []plot.Series{
			rawLine("Raw Write", f4.RawWrite),
			seqXY("FFS + Realloc", f4.Realloc, func(r bench.SeqResult) float64 { return mb(r.WriteBps) }),
			seqXY("FFS", f4.Orig, func(r bench.SeqResult) float64 { return mb(r.WriteBps) }),
		},
	}); err != nil {
		return err
	}

	o5, r5, err := s.Fig5()
	if err != nil {
		return err
	}
	if err := write("fig5.svg", &plot.Chart{
		Title:  "Figure 5: File Fragmentation During Sequential I/O Benchmark",
		XLabel: "File Size", YLabel: "Layout Score", YMin: 0, YMax: 1, LogX: true,
		Series: []plot.Series{
			seqXY("FFS + Realloc", r5, func(r bench.SeqResult) float64 { return r.LayoutScore }),
			seqXY("FFS", o5, func(r bench.SeqResult) float64 { return r.LayoutScore }),
		},
	}); err != nil {
		return err
	}

	h6o, h6r := s.Fig6()
	if err := write("fig6.svg", &plot.Chart{
		Title:  "Figure 6: Layout Score of Hot Files",
		XLabel: "File Size", YLabel: "Layout Score", YMin: 0, YMax: 1, LogX: true,
		Series: []plot.Series{
			bucketXY("FFS + Realloc (Hot Files)", h6r),
			seqXY("FFS + Realloc (Sequential)", r5, func(r bench.SeqResult) float64 { return r.LayoutScore }),
			bucketXY("FFS (Hot Files)", h6o),
			seqXY("FFS (Sequential)", o5, func(r bench.SeqResult) float64 { return r.LayoutScore }),
		},
	}); err != nil {
		return err
	}
	return nil
}
