// Command repro regenerates every table and figure of Smith & Seltzer,
// "A Comparison of FFS Disk Allocation Policies" (USENIX 1996), against
// the simulated substrate, printing paper-reported values next to the
// measured ones.
//
// Usage:
//
//	repro [-seed N] [-quick] [-only fig2,table2] [-ablations]
//	      [-busstudy] [-profiles] [-policies all|a,b] [-j N] [-slowscore]
//	      [-faults spec] [-checkpoint-every K] [-checkpoint-dir dir] [-resume]
//	      [-md out.md] [-svg dir] [-metrics out.metrics] [-events out.jsonl]
//	      [-spans out.trace.json] [-spans-jsonl out.spans.jsonl]
//	      [-cpuprofile out.pprof] [-memprofile out.pprof]
//
// The full run ages three 502 MB file systems through a ten-month
// workload and sweeps the sequential benchmark over 18 file sizes on
// two of them; expect roughly a minute. Independent arms run on a
// worker pool bounded by -j (default GOMAXPROCS); the report is
// byte-identical regardless of -j because results are collected in
// submission order. A per-job timing footer goes to stdout (never the
// markdown report).
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"time"

	"ffsage/internal/bench"
	"ffsage/internal/disk"
	"ffsage/internal/experiments"
	"ffsage/internal/faults"
	"ffsage/internal/ffs"
	"ffsage/internal/obs"
	"ffsage/internal/policy"
	"ffsage/internal/runner"
	"ffsage/internal/stats"
	"ffsage/internal/trace"
)

func main() {
	var (
		seed       = flag.Int64("seed", 1996, "workload generation seed")
		quick      = flag.Bool("quick", false, "scaled-down run (60 days, 128 MB)")
		only       = flag.String("only", "", "comma-separated subset: table1,fig1,...,fig6,table2")
		ablations  = flag.Bool("ablations", false, "also run the A1/A2/A4/A5 ablations")
		profiles   = flag.Bool("profiles", false, "also run the §6 workload-profile study")
		busStudy   = flag.Bool("busstudy", false, "also run the §5.1 bus-bandwidth study")
		policies   = flag.String("policies", "", "also run the N-way policy tournament: all, or comma-separated registered names")
		jobs       = flag.Int("j", 0, "max concurrent jobs (0 = GOMAXPROCS)")
		slowScore  = flag.Bool("slowscore", false, "compute daily layout scores by full rescan (cross-check of the incremental counters)")
		arena      = flag.String("arena", "on", "File-recycling arena for the aging replays: on or off (off is a cross-check; results are identical)")
		faultSpec  = flag.String("faults", "", "fault plan for the aging replays, e.g. crash@day:30 or ioerr@alloc:5000 (see internal/faults)")
		ckptEvery  = flag.Int("checkpoint-every", 0, "checkpoint the aging replays every K simulated days (needs -checkpoint-dir)")
		ckptDir    = flag.String("checkpoint-dir", "", "directory holding aging checkpoints")
		resume     = flag.Bool("resume", false, "resume the aging replays from the checkpoints in -checkpoint-dir")
		mdPath     = flag.String("md", "", "also write a markdown report to this path")
		svgDir     = flag.String("svg", "", "also render the six figures as SVG into this directory")
		metricsOut = flag.String("metrics", "", "write the deterministic metrics snapshot to this file")
		eventsOut  = flag.String("events", "", "write the deterministic event streams (JSONL) to this file")
		spansOut   = flag.String("spans", "", "write the span streams as Chrome trace-event JSON (chrome://tracing, Perfetto) to this file")
		spansJSONL = flag.String("spans-jsonl", "", "write the span streams as JSONL to this file")
		cpuProf    = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf    = flag.String("memprofile", "", "write a heap profile to this file")
	)
	flag.Parse()
	if *jobs > 0 {
		runner.SetWorkers(*jobs)
	}
	runner.CaptureTelemetry(true)
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "repro:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "repro:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	err := run(options{seed: *seed, quick: *quick, only: *only, ablations: *ablations,
		profiles: *profiles, busStudy: *busStudy, policies: *policies, slowScore: *slowScore, arena: *arena,
		faults: *faultSpec, ckptEvery: *ckptEvery, ckptDir: *ckptDir, resume: *resume,
		mdPath: *mdPath, svgDir: *svgDir, metrics: *metricsOut, events: *eventsOut,
		spans: *spansOut, spansJSONL: *spansJSONL})
	if *memProf != "" {
		if perr := writeHeapProfile(*memProf); perr != nil && err == nil {
			err = perr
		}
	}
	if *cpuProf != "" {
		// The deferred stop does not run past os.Exit; flush here too.
		pprof.StopCPUProfile()
	}
	var crash *faults.Crash
	if errors.As(err, &crash) {
		fmt.Fprintf(os.Stderr, "repro: aging stopped at planned %v\n", crash)
		if *ckptDir != "" {
			fmt.Fprintf(os.Stderr, "repro: resume with: repro -resume -checkpoint-dir %s (plus the original flags, minus -faults)\n", *ckptDir)
		}
		os.Exit(3)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "repro:", err)
		os.Exit(1)
	}
}

// report fans output to stdout and (optionally) a markdown file. The
// two sinks share content; the markdown sink wraps tables in code
// fences so the report renders as written.
type report struct {
	out io.Writer
	md  io.Writer
}

func (r *report) section(title string) {
	fmt.Fprintf(r.out, "\n=== %s ===\n", title)
	if r.md != nil {
		fmt.Fprintf(r.md, "\n## %s\n\n", title)
	}
}

func (r *report) text(format string, args ...interface{}) {
	fmt.Fprintf(r.out, format+"\n", args...)
	if r.md != nil {
		fmt.Fprintf(r.md, format+"\n\n", args...)
	}
}

func (r *report) table(lines []string) {
	for _, l := range lines {
		fmt.Fprintln(r.out, l)
	}
	if r.md != nil {
		fmt.Fprintln(r.md, "```text")
		for _, l := range lines {
			fmt.Fprintln(r.md, l)
		}
		fmt.Fprintln(r.md, "```")
	}
}

// options carries the command line.
type options struct {
	seed       int64
	quick      bool
	only       string
	ablations  bool
	profiles   bool
	busStudy   bool
	policies   string
	slowScore  bool
	arena      string
	faults     string
	ckptEvery  int
	ckptDir    string
	resume     bool
	mdPath     string
	svgDir     string
	metrics    string
	events     string
	spans      string
	spansJSONL string
}

// writeHeapProfile dumps an up-to-date heap profile.
func writeHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	runtime.GC()
	return pprof.WriteHeapProfile(f)
}

// recoveryConfig translates the -faults/-checkpoint flags into the
// experiment suite's Recovery wiring: one checkpoint file per aging
// arm in ckptDir, written atomically (temp file + rename) so a crash
// mid-checkpoint leaves the previous one intact.
func recoveryConfig(o options) (*experiments.Recovery, error) {
	if o.faults == "" && o.ckptEvery == 0 && !o.resume {
		return nil, nil
	}
	rec := &experiments.Recovery{CheckpointEvery: o.ckptEvery}
	if o.faults != "" {
		plan, err := faults.Parse(o.faults)
		if err != nil {
			return nil, err
		}
		rec.Faults = plan
	}
	if o.ckptEvery > 0 || o.resume {
		if o.ckptDir == "" {
			return nil, fmt.Errorf("-checkpoint-every/-resume need -checkpoint-dir")
		}
		if err := os.MkdirAll(o.ckptDir, 0o777); err != nil {
			return nil, err
		}
	}
	ckptPath := func(arm string) string { return filepath.Join(o.ckptDir, arm+".ckpt") }
	if o.ckptEvery > 0 {
		rec.Sink = func(arm string) func(*trace.Checkpoint) error {
			return func(cp *trace.Checkpoint) error {
				tmp, err := os.CreateTemp(o.ckptDir, arm+".tmp*")
				if err != nil {
					return err
				}
				if err := trace.WriteCheckpoint(tmp, cp); err != nil {
					tmp.Close()
					os.Remove(tmp.Name())
					return err
				}
				if err := tmp.Close(); err != nil {
					os.Remove(tmp.Name())
					return err
				}
				return os.Rename(tmp.Name(), ckptPath(arm))
			}
		}
	}
	if o.resume {
		rec.Resume = func(arm string) (*trace.Checkpoint, error) {
			f, err := os.Open(ckptPath(arm))
			if os.IsNotExist(err) {
				return nil, nil // no checkpoint yet: start fresh
			}
			if err != nil {
				return nil, err
			}
			defer f.Close()
			cp, err := trace.ReadCheckpoint(f)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", ckptPath(arm), err)
			}
			return cp, nil
		}
	}
	return rec, nil
}

func run(o options) error {
	seed, quick, only, ablations, mdPath := o.seed, o.quick, o.only, o.ablations, o.mdPath
	cfg := experiments.Full(seed)
	scale := "full (paper) scale"
	if quick {
		cfg = experiments.Quick(seed)
		scale = "quick scale"
	}
	cfg.SlowScore = o.slowScore
	switch o.arena {
	case "", "on":
	case "off":
		cfg.NoArena = true
	default:
		return fmt.Errorf("-arena=%s: want on or off", o.arena)
	}
	rec, err := recoveryConfig(o)
	if err != nil {
		return err
	}
	cfg.Recovery = rec
	cfg.Obs = obs.Default
	want := map[string]bool{}
	for _, k := range strings.Split(only, ",") {
		if k = strings.TrimSpace(k); k != "" {
			want[strings.ToLower(k)] = true
		}
	}
	sel := func(k string) bool { return len(want) == 0 || want[k] }

	r := &report{out: os.Stdout}
	if mdPath != "" {
		f, err := os.Create(mdPath)
		if err != nil {
			return err
		}
		defer f.Close()
		r.md = f
		fmt.Fprintf(f, "# Reproduction report (seed %d, %s)\n", seed, scale)
	}

	fmt.Printf("ffsage reproduction: seed %d, %s\n", seed, scale)
	fmt.Println("building workload and aging three file systems...")
	s, err := experiments.NewSuite(cfg)
	if err != nil {
		return err
	}
	gt := s.Build.Reference.GroundTruth.Summarize()
	rc := s.Build.Reconstructed.Summarize()
	r.section("Workload")
	r.text("ground truth:  %v", gt)
	r.text("reconstructed: %v (replayed by the aging tool)", rc)
	r.text("paper:         ~800,000 operations writing 48.6 GB over ten months")
	r.text("end state: %d live files, utilization %.0f%% (paper: 8,774 files)",
		s.Build.Reference.EndLiveFiles,
		100*float64(s.Build.Reference.EndUsedBytes)/float64(cfg.WorkloadCfg.FsBytes))

	if sel("table1") {
		r.section("Table 1: Benchmark Configuration")
		var lines []string
		rows := s.Table1()
		for _, row := range rows {
			lines = append(lines, fmt.Sprintf("  %-12s %-30s %s", row.Section, row.Name, row.Value))
		}
		r.table(lines)
	}

	if sel("fig1") {
		r.section("Figure 1: Aggregate Layout Score Over Time — Real vs Simulated")
		realS, sim := s.Fig1()
		r.table(seriesTable([]string{"real", "simulated"}, []stats.Series{realS, sim}, s.Days()))
		r.text("final: real %.3f, simulated %.3f (paper: 0.68 real, 0.77 simulated; the"+
			" reconstruction loses intra-day churn, so it ages less)",
			realS.FinalOr(math.NaN()), sim.FinalOr(math.NaN()))
	}

	if sel("fig2") {
		r.section("Figure 2: Aggregate Layout Score Over Time — FFS vs FFS+Realloc")
		o, re := s.Fig2()
		r.table(seriesTable([]string{"ffs", "ffs+realloc"}, []stats.Series{o, re}, s.Days()))
		h, err := s.Headlines()
		if err != nil {
			return err
		}
		r.text("day 1:  ffs %.3f, realloc %.3f (paper: 0.924 vs 0.950)", h.Day1Orig, h.Day1Realloc)
		r.text("final:  ffs %.3f, realloc %.3f (paper: 0.766 vs 0.899)", h.FinalOrig, h.FinalRealloc)
		r.text("non-optimal blocks cut by %.1f%% (paper: 56.8%%)", 100*h.NonOptimalImprovement)
		r.text("intra-file disk seeks: %d → %d, a %.0f%% reduction (paper §7: \"more"+
			" than 50%%\")", h.SeeksOrig, h.SeeksRealloc, 100*h.SeekReduction)
	}

	if sel("fig3") {
		r.section("Figure 3: Layout Score as a Function of File Size (aged images)")
		o, re := s.Fig3()
		r.table(bucketTable(o, re))
		r.text("paper: realloc near-optimal below the 56 KB cluster size; both lines drop" +
			" past 96 KB (the indirect block's mandatory group switch); two-block files dip")
	}

	var fig4 *experiments.Fig4Data
	if sel("fig4") || sel("fig5") {
		if fig4, err = s.Fig4(); err != nil {
			return err
		}
	}
	if sel("fig4") {
		r.section("Figure 4: Sequential I/O Performance (MB/s)")
		r.table(fig4Table(fig4))
		r.text("raw device: read %.2f MB/s, write %.2f MB/s", fig4.RawRead/1e6, fig4.RawWrite/1e6)
		r.text("paper: realloc up to 58%% faster reads near 96 KB, 44%% faster writes at" +
			" 64 KB; sharp dip at 104 KB; large realloc writes approach/exceed raw writes")

		r.section("Time attribution: where the Figure 4 sweep's simulated seconds went")
		var lines []string
		lines = append(lines, attributionTable("ffs", experiments.AggregateSeqStats(fig4.Orig))...)
		lines = append(lines, "")
		lines = append(lines, attributionTable("ffs+realloc", experiments.AggregateSeqStats(fig4.Realloc))...)
		r.table(lines)
		r.text("rows split each disk request's duration into seek, rotational latency," +
			" transfer, and controller overhead by service class; the totals row equals" +
			" the disk model's aggregate time counters exactly (not within epsilon —" +
			" the totals are defined as this sum). the realloc image's smaller seek and" +
			" rotation shares are the paper's §5 explanation for its Figure 4 gains")
	}

	if sel("fig5") {
		r.section("Figure 5: Layout of Files Created by the Sequential Benchmark")
		var lines []string
		lines = append(lines, fmt.Sprintf("  %10s  %12s  %12s", "size", "ffs", "ffs+realloc"))
		for i := range fig4.Orig {
			lines = append(lines, fmt.Sprintf("  %9dK  %12.3f  %12.3f",
				fig4.Orig[i].FileSize>>10, fig4.Orig[i].LayoutScore, fig4.Realloc[i].LayoutScore))
		}
		r.table(lines)
		r.text("paper: realloc achieves perfect layout up to 56 KB; most 64–96 KB files" +
			" fully contiguous")
	}

	if sel("table2") {
		r.section("Table 2: Performance of Recently Modified (Hot) Files")
		o, re, err := s.Table2()
		if err != nil {
			return err
		}
		// The paper ran each throughput test ten times (sd < 2% of
		// mean); our ten runs sweep the platter's initial phase.
		from := s.Days() - cfg.HotWindow
		oRep, err := bench.HotFilesRepeated(s.AgedFFS.Fs, cfg.DiskParams, from, 10)
		if err != nil {
			return err
		}
		reRep, err := bench.HotFilesRepeated(s.AgedRealloc.Fs, cfg.DiskParams, from, 10)
		if err != nil {
			return err
		}
		ms := func(sm stats.Summary) string {
			return fmt.Sprintf("%.2f±%.0f%%", sm.Mean/1e6, 100*sm.RelStdDev())
		}
		r.table([]string{
			fmt.Sprintf("  %-18s %14s %14s   %s", "", "ffs", "ffs+realloc", "paper (ffs → realloc)"),
			fmt.Sprintf("  %-18s %14.2f %14.2f   0.80 → 0.96", "layout score", o.LayoutScore, re.LayoutScore),
			fmt.Sprintf("  %-18s %9s MB/s %9s MB/s   1.65 → 2.18 (+32%%)", "read throughput", ms(oRep.Read), ms(reRep.Read)),
			fmt.Sprintf("  %-18s %9s MB/s %9s MB/s   1.04 → 1.25 (+20%%)", "write throughput", ms(oRep.Write), ms(reRep.Write)),
		})
		r.text("ten runs each, sweeping initial rotational phase (paper: ten runs, all"+
			" standard deviations < 2%% of the mean); hot set: %d files (%.1f%% of files,"+
			" %.1f%% of bytes; paper: 929 files = 10.5%%, 19%% of space); read +%.0f%%,"+
			" write +%.0f%%",
			o.NFiles, 100*o.FracFiles, 100*o.FracBytes,
			100*(reRep.Read.Mean/oRep.Read.Mean-1), 100*(reRep.Write.Mean/oRep.Write.Mean-1))
	}

	if sel("fig6") {
		r.section("Figure 6: Layout Score of Hot Files (vs sequential-benchmark files)")
		ho, hre := s.Fig6()
		r.table(bucketTable(ho, hre))
		r.text("paper: with realloc the hot files' layout nearly matches the sequential" +
			" benchmark's; two-block files score lowest")
	}

	if ablations {
		if err := runAblations(r, cfg); err != nil {
			return err
		}
	}
	if o.busStudy {
		r.section("Study A6: bus bandwidth and the size of the layout benefit (§5.1)")
		rs, err := experiments.BusStudy(s)
		if err != nil {
			return err
		}
		lines := []string{fmt.Sprintf("  %-30s %10s %10s %8s", "host path", "ffs rd", "rlc rd", "gain")}
		for _, b := range rs {
			lines = append(lines, fmt.Sprintf("  %-30s %7.2f MB/s %7.2f MB/s %+6.0f%%",
				b.Label, b.ReadFFS/1e6, b.ReadRealloc/1e6, 100*b.Gain()))
		}
		r.table(lines)
		r.text("paper §5.1: the PCI machine's higher bus bandwidth raises the ratio of" +
			" seek time to transfer time, so the same layout improvement buys a larger" +
			" relative speedup than [Seltzer95] measured on a SparcStation 1 (~15%%)")
	}
	if o.busStudy {
		r.section("Study A8: why clustering — block-at-a-time vs clustered I/O (§1 context)")
		rows, err := bench.ClusteringStudy(4<<20, cfg.DiskParams)
		if err != nil {
			return err
		}
		lines := []string{fmt.Sprintf("  %-46s %10s %8s", "world", "read", "layout")}
		for _, row := range rows {
			lines = append(lines, fmt.Sprintf("  %-46s %7.2f MB/s %8.2f",
				row.Label, row.ReadBps/1e6, row.LayoutScore))
		}
		r.table(lines)
		r.text("paper §1: clustering improves on block-at-a-time file systems \"by a" +
			" factor of two or three\" [McVoy90][Seltzer93]; the rotdelay row shows the" +
			" pre-clustering mitigation those papers replaced")
	}
	if o.busStudy {
		r.section("Study A9: the buffer cache and the hot set (§5.2 rationale)")
		// Sweep cache sizes around the hot set's footprint so the knee
		// is visible at any scale.
		hot, _, terr := s.Table2()
		if terr != nil {
			return terr
		}
		setMB := hot.TotalBytes >> 20
		sizes := []int64{setMB / 4 << 20, setMB / 2 << 20, setMB << 20, 2 * setMB << 20}
		rows, err := bench.CacheStudy(s.AgedRealloc.Fs, cfg.DiskParams, s.Days()-cfg.HotWindow, sizes)
		if err != nil {
			return err
		}
		lines := []string{fmt.Sprintf("  %10s %14s %14s %8s", "cache", "pass 1", "pass 2", "hits")}
		for _, row := range rows {
			lines = append(lines, fmt.Sprintf("  %8dMB %11.2f MB/s %11.2f MB/s %7.0f%%",
				row.CacheBytes>>20, row.FirstPassBps/1e6, row.SecondPassBps/1e6, 100*row.HitRate))
		}
		r.table(lines)
		r.text("paper §5.2: the hot set was chosen because it cannot all fit in the buffer" +
			" cache, so its on-disk layout governs performance; once the cache exceeds the" +
			" set, layout stops mattering and rereads run at memory speed")
	}
	if o.busStudy {
		r.section("Study A10: request scheduling vs layout")
		rows, err := bench.SchedulingStudy(map[string]*ffs.FileSystem{
			"ffs":         s.AgedFFS.Fs,
			"ffs+realloc": s.AgedRealloc.Fs,
		}, cfg.DiskParams, s.Days()-cfg.HotWindow)
		if err != nil {
			return err
		}
		lines := []string{fmt.Sprintf("  %-14s %-20s %12s", "image", "queue discipline", "write")}
		for _, row := range rows {
			lines = append(lines, fmt.Sprintf("  %-14s %-20s %9.2f MB/s",
				row.Image, row.Discipline, row.WriteBps/1e6))
		}
		r.table(lines)
		r.text("sorting alone can even lose to arrival order: it turns long seeks (which" +
			" land at random rotational phase) into short hops that each wait nearly a" +
			" full revolution; only sorting *plus coalescing* — which is exactly what" +
			" the file system's clustering does at allocation time — recovers both" +
			" costs, and it converges to the same ceiling on either image")
	}
	if o.policies != "" {
		if err := runTournament(r, cfg, o.policies, scale); err != nil {
			return err
		}
	}
	if o.profiles {
		r.section("Study A7: workload profiles (the paper's §6 future work)")
		rs, err := experiments.RunProfiles(cfg)
		if err != nil {
			return err
		}
		lines := []string{fmt.Sprintf("  %-10s %8s %8s %7s  %8s %8s  %10s %10s",
			"profile", "ops", "GB", "files", "lay ffs", "lay rlc", "hotrd ffs", "hotrd rlc")}
		for _, p := range rs {
			lines = append(lines, fmt.Sprintf("  %-10s %8d %8.1f %7d  %8.3f %8.3f  %7.2f MB/s %7.2f MB/s",
				p.Profile, p.Ops, float64(p.BytesWritten)/(1<<30), p.EndFiles,
				p.LayoutFFS, p.LayoutRealloc, p.HotReadFFS/1e6, p.HotReadRealloc/1e6))
		}
		r.table(lines)
		r.text("news spools fragment catastrophically under either policy; databases are" +
			" insensitive to the allocator; home-directory patterns are where realloc pays")
	}
	if o.svgDir != "" {
		if err := writeSVGs(s, o.svgDir); err != nil {
			return err
		}
		fmt.Printf("\nSVG figures written to %s\n", o.svgDir)
	}
	if mdPath != "" {
		fmt.Printf("\nmarkdown report written to %s\n", mdPath)
	}
	if o.metrics != "" {
		if err := writeSnapshot(o.metrics, obs.Default.WriteMetrics); err != nil {
			return err
		}
		fmt.Printf("\nmetrics snapshot written to %s\n", o.metrics)
	}
	if o.events != "" {
		if err := writeSnapshot(o.events, obs.Default.WriteEvents); err != nil {
			return err
		}
		fmt.Printf("event streams written to %s\n", o.events)
	}
	if o.spans != "" {
		if err := writeSnapshot(o.spans, obs.Default.WriteChromeTrace); err != nil {
			return err
		}
		fmt.Printf("span trace written to %s (load in chrome://tracing or Perfetto)\n", o.spans)
	}
	if o.spansJSONL != "" {
		if err := writeSnapshot(o.spansJSONL, obs.Default.WriteSpans); err != nil {
			return err
		}
		fmt.Printf("span streams written to %s\n", o.spansJSONL)
	}
	timingFooter()
	return nil
}

// writeSnapshot creates path and streams one of the registry's
// deterministic dumps into it.
func writeSnapshot(path string, dump func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := dump(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// attributionTable renders one image's per-class time attribution. The
// "all" row sums the class rows in class order — by construction (see
// disk.Attribution.Totals) it equals the disk model's SeekTime /
// RotTime / TransferTime / OverheadTime counters bit for bit.
func attributionTable(label string, st disk.Stats) []string {
	lines := []string{
		fmt.Sprintf("  %-12s %10s %10s %10s %10s %10s %10s", label, "requests", "seek s", "rot s", "xfer s", "ovhd s", "total s"),
	}
	var all disk.TimeSplit
	for c := disk.ReqClass(0); c < disk.NumReqClasses; c++ {
		t := st.Attr.Class(c)
		all.Count += t.Count
		lines = append(lines, fmt.Sprintf("  %-12s %10d %10.3f %10.3f %10.3f %10.3f %10.3f",
			disk.ClassLabel(c), t.Count, t.Seek, t.Rot, t.Transfer, t.Overhead, t.Total()))
	}
	lines = append(lines, fmt.Sprintf("  %-12s %10d %10.3f %10.3f %10.3f %10.3f %10.3f",
		"all", all.Count, st.SeekTime, st.RotTime, st.TransferTime, st.OverheadTime,
		st.SeekTime+st.RotTime+st.TransferTime+st.OverheadTime))
	return lines
}

// timingFooter prints the runner's per-job telemetry and the artifact
// caches' hit/miss tallies to stdout only — never the markdown report
// or the metrics snapshot, both of which stay byte-identical for any
// -j and across checkpoint/resume (cache traffic does not).
func timingFooter() {
	bh, bm, ah, am := experiments.CacheCounts()
	if bh+bm+ah+am > 0 {
		fmt.Printf("\n--- caches ---\n")
		fmt.Printf("  workload builds: %d hit, %d miss\n", bh, bm)
		fmt.Printf("  aged images:     %d hit, %d miss\n", ah, am)
	}
	jobs := runner.Telemetry()
	if len(jobs) == 0 {
		return
	}
	fmt.Printf("\n--- timing (%d jobs, workers=%d) ---\n", len(jobs), runner.Workers())
	var wall time.Duration
	var alloc uint64
	for _, st := range jobs {
		status := ""
		if st.Err != nil {
			status = "  ERR: " + st.Err.Error()
		}
		fmt.Printf("  %-40s %10v %10s%s\n",
			st.Label, st.Wall.Round(time.Millisecond), fmtBytes(st.AllocBytes), status)
		wall += st.Wall
		alloc += st.AllocBytes
	}
	fmt.Printf("  %-40s %10v %10s\n", "total (sum over jobs)", wall.Round(time.Millisecond), fmtBytes(alloc))
}

func fmtBytes(b uint64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.1fGB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKB", float64(b)/(1<<10))
	}
	return fmt.Sprintf("%dB", b)
}

// runTournament runs the N-way policy tournament and emits its report
// as a section. The rendered lines come from the same fragment-based
// writer as cmd/tournament, so this section is byte-identical to that
// command's output (and to a CI fan-in assembly) for the same inputs.
func runTournament(r *report, cfg experiments.Config, spec, scale string) error {
	names := policy.Names()
	if spec != "all" {
		names = nil
		for _, n := range strings.Split(spec, ",") {
			if n = strings.TrimSpace(n); n != "" {
				names = append(names, n)
			}
		}
	}
	pols, err := experiments.RegisteredPolicies(names...)
	if err != nil {
		return err
	}
	r.section(fmt.Sprintf("Policy tournament: %d-way comparison", len(pols)))
	entries, err := experiments.Tournament(cfg, pols...)
	if err != nil {
		return err
	}
	var buf strings.Builder
	if err := experiments.RenderTournament(&buf, scale, cfg.Seed, cfg.WorkloadCfg.Days, entries); err != nil {
		return err
	}
	r.table(strings.Split(strings.TrimRight(buf.String(), "\n"), "\n"))
	return nil
}

func runAblations(r *report, cfg experiments.Config) error {
	r.section("Ablation A1: maxcontig sweep (realloc policy)")
	a1, err := experiments.AblationMaxContig(cfg, []int{1, 2, 4, 7, 14})
	if err != nil {
		return err
	}
	r.table(ablationTable(a1))

	r.section("Ablation A2: two-block quirk")
	a2, err := experiments.AblationQuirk(cfg)
	if err != nil {
		return err
	}
	var lines []string
	lines = append(lines, fmt.Sprintf("  %-28s %14s %12s", "", "2-block score", "final layout"))
	for _, q := range a2 {
		lines = append(lines, fmt.Sprintf("  %-28s %14.3f %12.3f", q.Label, q.TwoBlockScore, q.FinalLayout))
	}
	r.table(lines)

	r.section("Ablation A4: cluster-search fit discipline")
	a4, err := experiments.AblationClusterFit(cfg)
	if err != nil {
		return err
	}
	r.table(ablationTable(a4))

	r.section("Ablation A5: cross-group cluster search")
	a5, err := experiments.AblationCrossCg(cfg)
	if err != nil {
		return err
	}
	r.table(ablationTable(a5))
	return nil
}

func ablationTable(rs []experiments.AblationResult) []string {
	lines := []string{fmt.Sprintf("  %-28s %12s %14s %14s %10s",
		"", "final layout", "96KB bench lay", "96KB read MB/s", "moves")}
	for _, a := range rs {
		lines = append(lines, fmt.Sprintf("  %-28s %12.3f %14.3f %14.2f %10d",
			a.Label, a.FinalLayout, a.BenchLayout96, a.BenchRead96/1e6, a.ClusterMoves))
	}
	return lines
}

// seriesTable renders layout-over-time series at ~12 sample days.
func seriesTable(names []string, series []stats.Series, days int) []string {
	step := days / 12
	if step < 1 {
		step = 1
	}
	header := "  day   "
	for _, n := range names {
		header += fmt.Sprintf("%12s", n)
	}
	lines := []string{header}
	for d := 0; d < days; d += step {
		row := fmt.Sprintf("  %4d  ", d+1)
		for _, s := range series {
			row += fmt.Sprintf("%12.3f", s.AtOr(d, math.NaN()))
		}
		lines = append(lines, row)
	}
	row := fmt.Sprintf("  %4d  ", days)
	for _, s := range series {
		row += fmt.Sprintf("%12.3f", s.FinalOr(math.NaN()))
	}
	return append(lines, row)
}

func bucketTable(orig, realloc []stats.SizeBucket) []string {
	lines := []string{fmt.Sprintf("  %10s  %7s %7s %8s   %7s %7s %8s",
		"size", "files", "score", "(ffs)", "files", "score", "(rlc)")}
	for i := range orig {
		if orig[i].Files == 0 && realloc[i].Files == 0 {
			continue
		}
		lines = append(lines, fmt.Sprintf("  %10s  %7d %7.3f %8s   %7d %7.3f %8s",
			orig[i].Label, orig[i].Files, orig[i].Score, "",
			realloc[i].Files, realloc[i].Score, ""))
	}
	return lines
}

func fig4Table(d *experiments.Fig4Data) []string {
	lines := []string{fmt.Sprintf("  %10s  %10s %10s %8s  %10s %10s %8s",
		"size", "ffs wr", "rlc wr", "Δwr", "ffs rd", "rlc rd", "Δrd")}
	idx := make([]int, len(d.Orig))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return d.Orig[idx[a]].FileSize < d.Orig[idx[b]].FileSize })
	mb := func(x float64) float64 { return x / 1e6 }
	for _, i := range idx {
		o, rr := d.Orig[i], d.Realloc[i]
		lines = append(lines, fmt.Sprintf("  %9dK  %10.2f %10.2f %+7.0f%%  %10.2f %10.2f %+7.0f%%",
			o.FileSize>>10, mb(o.WriteBps), mb(rr.WriteBps), 100*(rr.WriteBps/o.WriteBps-1),
			mb(o.ReadBps), mb(rr.ReadBps), 100*(rr.ReadBps/o.ReadBps-1)))
	}
	return lines
}
