// Command mkworkload generates an aging workload: it simulates the
// reference file server, takes its nightly snapshots, reconstructs the
// operation stream from them with the paper's heuristics, and merges in
// the synthetic NFS short-lived activity (paper Section 3.1).
//
// Outputs (all optional):
//
//	-out FILE        the reconstructed aging workload (binary)
//	-truth FILE      the ground-truth operation stream (binary)
//	-snapshots FILE  the nightly snapshots (binary)
//	-text            write workloads in the text format instead
package main

import (
	"flag"
	"fmt"
	"os"

	"ffsage/internal/trace"
	"ffsage/internal/workload"
)

func main() {
	var (
		seed     = flag.Int64("seed", 1996, "generation seed")
		days     = flag.Int("days", 300, "simulated days")
		out      = flag.String("out", "workload.ffw", "reconstructed workload output")
		truthOut = flag.String("truth", "", "ground-truth stream output")
		snapsOut = flag.String("snapshots", "", "nightly snapshots output")
		asText   = flag.Bool("text", false, "write workloads as text")
	)
	flag.Parse()
	if err := run(*seed, *days, *out, *truthOut, *snapsOut, *asText); err != nil {
		fmt.Fprintln(os.Stderr, "mkworkload:", err)
		os.Exit(1)
	}
}

func run(seed int64, days int, out, truthOut, snapsOut string, asText bool) error {
	cfg := workload.DefaultConfig(seed)
	cfg.Days = days
	b, err := workload.BuildWorkload(cfg, workload.DefaultNFSTraceConfig(seed+1))
	if err != nil {
		return err
	}
	fmt.Printf("ground truth:  %v\n", b.Reference.GroundTruth.Summarize())
	fmt.Printf("reconstructed: %v\n", b.Reconstructed.Summarize())
	fmt.Printf("end state: %d files, %.1f MB used\n",
		b.Reference.EndLiveFiles, float64(b.Reference.EndUsedBytes)/(1<<20))

	writeWl := func(path string, wl *trace.Workload) error {
		if path == "" {
			return nil
		}
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		if asText {
			err = trace.WriteWorkloadText(f, wl)
		} else {
			err = trace.WriteWorkload(f, wl)
		}
		if err == nil {
			fmt.Printf("wrote %s (%d ops)\n", path, len(wl.Ops))
		}
		return err
	}
	if err := writeWl(out, b.Reconstructed); err != nil {
		return err
	}
	if err := writeWl(truthOut, b.Reference.GroundTruth); err != nil {
		return err
	}
	if snapsOut != "" {
		f, err := os.Create(snapsOut)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := trace.WriteSnapshots(f, b.Reference.Snapshots); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d snapshots)\n", snapsOut, len(b.Reference.Snapshots))
	}
	return nil
}
