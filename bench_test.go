// Benchmarks regenerating each of the paper's tables and figures at
// the Quick scale (60 simulated days, 128 MB file system), so the whole
// suite runs in minutes. cmd/repro performs the same experiments at the
// paper's full scale. Each benchmark reports its exhibit's headline
// metric alongside the timing.
//
// Hot-path micro-benchmarks live in internal/perfbench and are driven
// here through BenchmarkHotPaths, so `go test -bench` and
// cmd/perfbench measure the same registered operations on the same
// fixtures and cannot drift apart.
package ffsage_test

import (
	"sort"
	"sync"
	"testing"
	"time"

	"ffsage/internal/aging"
	"ffsage/internal/bench"
	"ffsage/internal/core"
	"ffsage/internal/experiments"
	"ffsage/internal/perfbench"
	"ffsage/internal/runner"
	"ffsage/internal/workload"
)

var (
	suiteOnce sync.Once
	suite     *experiments.Suite
	suiteErr  error
)

// sharedSuite ages the Quick-scale images once; benchmarks that only
// need the aged state reuse it, while aging benchmarks rebuild it per
// iteration.
func sharedSuite(b *testing.B) *experiments.Suite {
	b.Helper()
	suiteOnce.Do(func() {
		suite, suiteErr = experiments.NewSuite(experiments.Quick(1996))
	})
	if suiteErr != nil {
		b.Fatal(suiteErr)
	}
	return suite
}

// BenchmarkHotPaths drives every benchmark registered in
// internal/perfbench — the continuous-benchmarking registry behind
// cmd/perfbench and the committed BENCH_*.json trajectory — as
// testing sub-benchmarks. The fixture, the fixed work units, and the
// measured operations are exactly the ones cmd/perfbench times;
// b.ReportMetric surfaces the same derived rates (ops/s, MB/s).
func BenchmarkHotPaths(b *testing.B) {
	fx, err := perfbench.NewFixture(1996)
	if err != nil {
		b.Fatal(err)
	}
	for _, bm := range perfbench.All() {
		b.Run(bm.Name, func(b *testing.B) {
			inst, err := bm.Setup(fx)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			start := time.Now()
			for i := 0; i < b.N; i++ {
				if err := inst.Op(); err != nil {
					b.Fatal(err)
				}
			}
			elapsed := time.Since(start)
			if inst.Units > 1 {
				b.ReportMetric(float64(elapsed.Nanoseconds())/float64(b.N)/float64(inst.Units), "ns/unit")
			}
			if inst.Metrics != nil && b.N > 0 && elapsed > 0 {
				medianSec := elapsed.Seconds() / float64(b.N)
				m := inst.Metrics(medianSec)
				names := make([]string, 0, len(m))
				for name := range m {
					names = append(names, name)
				}
				sort.Strings(names)
				for _, name := range names {
					b.ReportMetric(m[name], name)
				}
			}
		})
	}
}

// BenchmarkFig1AgingValidation regenerates Figure 1: the ground-truth
// ("real") and reconstructed ("simulated") agings.
func BenchmarkFig1AgingValidation(b *testing.B) {
	cfg := experiments.Quick(1996)
	w, err := workload.BuildWorkload(cfg.WorkloadCfg, cfg.NFSCfg)
	if err != nil {
		b.Fatal(err)
	}
	var realFinal, simFinal float64
	for i := 0; i < b.N; i++ {
		realRes, err := aging.Replay(cfg.FsParams, core.Original{}, w.Reference.GroundTruth, aging.Options{})
		if err != nil {
			b.Fatal(err)
		}
		simRes, err := aging.Replay(cfg.FsParams, core.Original{}, w.Reconstructed, aging.Options{})
		if err != nil {
			b.Fatal(err)
		}
		realFinal, simFinal = realRes.LayoutByDay.Final(), simRes.LayoutByDay.Final()
	}
	b.ReportMetric(realFinal, "layout-real")
	b.ReportMetric(simFinal, "layout-sim")
}

// BenchmarkFig2PolicyAging regenerates Figure 2: the same workload aged
// under both allocation policies.
func BenchmarkFig2PolicyAging(b *testing.B) {
	cfg := experiments.Quick(1996)
	w, err := workload.BuildWorkload(cfg.WorkloadCfg, cfg.NFSCfg)
	if err != nil {
		b.Fatal(err)
	}
	var o, r float64
	for i := 0; i < b.N; i++ {
		or, err := aging.Replay(cfg.FsParams, core.Original{}, w.Reconstructed, aging.Options{})
		if err != nil {
			b.Fatal(err)
		}
		rr, err := aging.Replay(cfg.FsParams, core.Realloc{}, w.Reconstructed, aging.Options{})
		if err != nil {
			b.Fatal(err)
		}
		o, r = or.LayoutByDay.Final(), rr.LayoutByDay.Final()
	}
	b.ReportMetric(o, "layout-ffs")
	b.ReportMetric(r, "layout-realloc")
}

// BenchmarkFig3LayoutBySize regenerates Figure 3 from the aged images.
func BenchmarkFig3LayoutBySize(b *testing.B) {
	s := sharedSuite(b)
	b.ResetTimer()
	var worst float64
	for i := 0; i < b.N; i++ {
		orig, realloc := s.Fig3()
		worst = 1
		for j := range orig {
			if realloc[j].Files > 0 && realloc[j].Score < worst {
				worst = realloc[j].Score
			}
		}
	}
	b.ReportMetric(worst, "min-bucket-score")
}

// BenchmarkFig4SequentialIO regenerates Figure 4: the sequential
// create/write + read sweep on both aged images.
func BenchmarkFig4SequentialIO(b *testing.B) {
	s := sharedSuite(b)
	b.ResetTimer()
	var gain96 float64
	for i := 0; i < b.N; i++ {
		s := *s // shallow copy discards the sweep memo each iteration
		d, err := s.Fig4()
		if err != nil {
			b.Fatal(err)
		}
		for j := range d.Orig {
			if d.Orig[j].FileSize == 96<<10 {
				gain96 = d.Realloc[j].ReadBps/d.Orig[j].ReadBps - 1
			}
		}
	}
	b.ReportMetric(100*gain96, "%read-gain@96KB")
}

// BenchmarkFig5BenchLayout regenerates Figure 5: layout of the
// benchmark-created files at the paper's most sensitive size.
func BenchmarkFig5BenchLayout(b *testing.B) {
	s := sharedSuite(b)
	b.ResetTimer()
	var score float64
	for i := 0; i < b.N; i++ {
		r, err := bench.SequentialIO(s.AgedRealloc.Fs, s.Cfg.DiskParams, 56<<10, s.Cfg.BenchTotal, s.Days())
		if err != nil {
			b.Fatal(err)
		}
		score = r.LayoutScore
	}
	b.ReportMetric(score, "layout@56KB")
}

// BenchmarkTable2HotFiles regenerates Table 2: the hot-file benchmark
// on both images.
func BenchmarkTable2HotFiles(b *testing.B) {
	s := sharedSuite(b)
	from := s.Days() - s.Cfg.HotWindow
	b.ResetTimer()
	var readGain float64
	for i := 0; i < b.N; i++ {
		o, err := bench.HotFiles(s.AgedFFS.Fs, s.Cfg.DiskParams, from)
		if err != nil {
			b.Fatal(err)
		}
		r, err := bench.HotFiles(s.AgedRealloc.Fs, s.Cfg.DiskParams, from)
		if err != nil {
			b.Fatal(err)
		}
		readGain = r.ReadBps/o.ReadBps - 1
	}
	b.ReportMetric(100*readGain, "%read-gain")
}

// BenchmarkFig6HotLayout regenerates Figure 6: hot files' layout by
// size on both images.
func BenchmarkFig6HotLayout(b *testing.B) {
	s := sharedSuite(b)
	b.ResetTimer()
	var agg float64
	for i := 0; i < b.N; i++ {
		_, realloc := s.Fig6()
		blocks, opt := 0, 0.0
		for _, bk := range realloc {
			blocks += bk.Blocks
			opt += bk.Score * float64(bk.Blocks)
		}
		if blocks > 0 {
			agg = opt / float64(blocks)
		}
	}
	b.ReportMetric(agg, "hot-layout-realloc")
}

// BenchmarkTable1Config regenerates the configuration table (trivially
// cheap; included for per-exhibit completeness).
func BenchmarkTable1Config(b *testing.B) {
	s := sharedSuite(b)
	b.ResetTimer()
	var rows int
	for i := 0; i < b.N; i++ {
		rows = len(s.Table1())
	}
	b.ReportMetric(float64(rows), "rows")
}

// BenchmarkAblationMaxContig runs the A1 ablation's extreme settings.
func BenchmarkAblationMaxContig(b *testing.B) {
	cfg := experiments.Quick(1996)
	var spread float64
	for i := 0; i < b.N; i++ {
		rs, err := experiments.AblationMaxContig(cfg, []int{1, 7})
		if err != nil {
			b.Fatal(err)
		}
		spread = rs[1].FinalLayout - rs[0].FinalLayout
	}
	b.ReportMetric(spread, "layout-spread")
}

// BenchmarkParallelSweepSpeedup runs the Figure 4 sequential sweep with
// one worker and with the full worker pool, reporting the wall-time
// ratio. The sweep's size points are independent, so on an N-core
// machine the pool approaches N× (≥2× on 4 cores); on a single core
// the ratio is ~1 and the benchmark only demonstrates no regression.
func BenchmarkParallelSweepSpeedup(b *testing.B) {
	s := sharedSuite(b)
	day := s.Days()
	run := func(workers int) time.Duration {
		start := time.Now()
		for i := 0; i < b.N; i++ {
			if _, err := bench.SequentialSweepN(s.AgedRealloc.Fs, s.Cfg.DiskParams,
				s.Cfg.BenchSizes, s.Cfg.BenchTotal, day, workers); err != nil {
				b.Fatal(err)
			}
		}
		return time.Since(start)
	}
	b.ResetTimer()
	serial := run(1)
	parallel := run(runner.Workers())
	b.ReportMetric(serial.Seconds()/parallel.Seconds(), "x-speedup")
	b.ReportMetric(float64(runner.Workers()), "workers")
}
